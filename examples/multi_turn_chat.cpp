// Multi-turn chat serving: continuous batching plus cross-request KV reuse.
//
// Several users share one engine through the FCFS scheduler. Every
// conversation opens with the same system prompt, and each follow-up turn
// replays the whole history — the shape of traffic the radix prefix cache
// (kv/prefix_cache.hpp) exists for. The workload comes from the shared
// bench generator (bench/common.hpp) so this example and
// bench/serving_prefix_reuse exercise the identical token streams; here the
// cache is ON and the per-turn accounting shows follow-up prefills shrink
// to the fresh suffix.
//
// Run:  ./examples/multi_turn_chat
#include <cstdio>
#include <functional>
#include <vector>

#include "baselines/baseline_engines.hpp"
#include "common.hpp"
#include "serve/scheduler.hpp"

using namespace lserve;

int main() {
  serve::EngineConfig cfg = baselines::lserve_config(model::small());
  cfg.pool_pages = 2048;
  cfg.enable_prefix_cache = true;
  serve::Engine engine(cfg);

  // Offline head classification (DuoAttention-style gates measured on
  // synthetic calibration streams; see DESIGN.md).
  engine.calibrate_head_kinds();
  std::size_t streaming_heads = 0;
  for (auto kind : engine.head_kinds()) {
    streaming_heads += (kind == kv::HeadKind::kStreaming);
  }
  std::printf("calibrated %zu/%zu kv heads as streaming heads\n\n",
              streaming_heads, engine.head_kinds().size());

  serve::Scheduler scheduler(engine, /*max_batch=*/4);

  bench::ChatWorkloadConfig wl;
  wl.users = 3;
  wl.turns_per_user = 3;
  wl.system_prompt_tokens = 128;
  wl.turn_prompt_tokens = 24;
  wl.reply_tokens = 6;

  // Chain each user's turns through on_done: the next prompt is the full
  // history including the engine's actual reply, so follow-up turns hit
  // the prefix cache at (almost) their entire prompt.
  std::vector<std::vector<std::int32_t>> prompts(wl.users);
  std::function<void(std::size_t, std::size_t)> launch =
      [&](std::size_t user, std::size_t turn) {
        serve::Request req;
        req.prompt = prompts[user];
        req.max_new_tokens = wl.reply_tokens;
        req.on_done = [&, user, turn](const serve::RequestResult& r) {
          std::printf("user %zu turn %zu: prompt=%4zu tok, reply=", user,
                      turn, r.prompt_tokens);
          for (auto t : r.output) std::printf("%d ", t);
          std::printf("\n");
          if (turn + 1 < wl.turns_per_user) {
            prompts[user] = bench::chat_next_prompt(wl, user, turn + 1,
                                                    prompts[user], r.output);
            launch(user, turn + 1);
          }
        };
        scheduler.submit(std::move(req));
      };
  for (std::size_t u = 0; u < wl.users; ++u) {
    prompts[u] = bench::chat_first_prompt(wl, u);
    launch(u, 0);
  }

  std::size_t iterations = 0;
  while (scheduler.step()) ++iterations;

  const serve::EngineStats& es = engine.stats();
  std::printf(
      "\ncompleted %zu requests in %zu scheduler iterations\n"
      "prefix cache: %zu hits, %zu prompt tokens served from KV, "
      "%zu COW copies, %zu evictions\n"
      "pages: dense in use=%zu streaming in use=%zu "
      "(cache holds %zu for the next turn)\n",
      scheduler.results().size(), iterations, es.prefix_hits,
      es.prefix_tokens_reused, es.prefix_cow_copies, es.prefix_evictions,
      engine.dense_allocator().pages_in_use(),
      engine.stream_allocator().pages_in_use(),
      engine.prefix_cache_pages_held());
  return 0;
}
