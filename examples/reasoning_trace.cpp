// Long-generation reasoning: the o1-style regime from the paper's intro,
// where DECODE dominates (Llama-3-8B with 256K input + 20K output spends
// ~5x longer decoding than prefilling).
//
// Part 1 reproduces that regime with the cost model: prefill vs decode
// time for a 256K-context, 20K-generation request under vLLM and LServe.
// Part 2 runs the reasoning mechanism itself: a multi-hop pointer chase
// over a 20K-token synthetic derivation trace, where each retrieved step's
// VALUE is the query for the next step — dense vs LServe pathways.
//
// Run:  ./examples/reasoning_trace
#include <cstdio>
#include <tuple>
#include <vector>

#include "costmodel/gpu_spec.hpp"
#include "costmodel/pipeline_cost.hpp"
#include "eval/metrics.hpp"
#include "model/workload.hpp"
#include "numeric/math.hpp"

using namespace lserve;

int main() {
  // ---- Part 1: where does the time go in a reasoning request? ----
  const cost::GpuSpec spec = cost::a100();
  const model::ModelConfig m = model::ds_r1_llama_8b();
  const std::size_t context = 262144, generated = 20480;

  std::printf("request: %zu context tokens, %zu generated tokens (%s)\n\n",
              context, generated, m.name.c_str());
  std::printf("%-12s %14s %16s %14s\n", "system", "prefill (s)",
              "decode 20K (s)", "decode/prefill");
  for (const auto& [name, policy] :
       {std::pair{"vLLM", cost::vllm_policy()},
        std::pair{"LServe", cost::lserve_policy()}}) {
    const double prefill_s =
        cost::prefill_cost(spec, m, policy, context, 1).total_us() / 1e6;
    // Decode cost varies with the growing context; integrate stepwise at a
    // coarse grid.
    double decode_s = 0.0;
    const std::size_t chunk = 2048;
    for (std::size_t g = 0; g < generated; g += chunk) {
      decode_s += cost::decode_step_cost(spec, m, policy, context + g, 1)
                      .total_us() *
                  chunk / 1e6;
    }
    std::printf("%-12s %14.1f %16.1f %14.1f\n", name, prefill_s, decode_s,
                decode_s / prefill_s);
  }
  std::printf(
      "\nDecode dominates the dense baseline ~5x (paper: 116 s prefill vs\n"
      "540 s decode); LServe's budget-bounded decode flattens the long\n"
      "tail.\n");

  // ---- Part 2: does sparse attention survive multi-hop reasoning? ----
  const std::size_t trace_tokens = 20480, head_dim = 128, hops = 5;
  const float strength = model::salient_strength(trace_tokens, head_dim);
  model::StreamConfig sc;
  sc.n_tokens = trace_tokens;
  sc.head_dim = head_dim;
  sc.seed = 99;
  model::TokenStream trace = model::smooth_stream(sc);
  std::vector<std::size_t> positions;
  for (std::size_t h = 0; h < hops; ++h) {
    positions.push_back(1024 + h * (trace_tokens - 2048) / hops);
  }
  const auto chain = model::plant_chain(trace, positions, strength, 5);

  std::printf("\nmulti-hop derivation chase over the %zu-token trace "
              "(%zu hops):\n",
              trace_tokens, hops);
  const std::vector<std::tuple<const char*, eval::PolicyKind, std::size_t>>
      pathways{std::make_tuple("dense", eval::PolicyKind::kDense,
                               std::size_t{0}),
               std::make_tuple("LServe (hier, 2K budget, KV4)",
                               eval::PolicyKind::kHierSelect,
                               std::size_t{2048})};
  for (const auto& [name, kind, budget] : pathways) {
    kv::PageConfig pages;
    pages.page_size = 64;
    pages.logical_page_size = 16;
    pages.head_dim = head_dim;
    pages.dtype = num::KvDtype::kInt4;
    kv::PageAllocator alloc(pages, trace_tokens / 64 + 2);
    kv::HeadCache head;
    eval::fill_head_cache(alloc, head, trace);

    eval::ProbePolicy policy;
    policy.kind = kind;
    policy.selector.token_budget = budget;
    std::vector<float> q = model::probe_query(chain.front(), strength, 0.05f,
                                              11);
    std::vector<float> out;
    for (std::size_t hop = 0; hop < hops; ++hop) {
      out = eval::run_probe(alloc, head, q.data(), policy);
      const float norm = num::l2_norm(out.data(), out.size());
      if (norm < 1e-9f) break;
      for (std::size_t c = 0; c < out.size(); ++c) {
        q[c] = strength * out[c] / norm;
      }
    }
    std::printf("  %-32s final-answer fidelity %.3f\n", name,
                eval::retrieval_accuracy(out, chain.back().payload));
  }
  std::printf(
      "\nThe chain only resolves if EVERY hop's page survives pruning —\n"
      "the property Table 4 checks on AIME/MATH500.\n");
  return 0;
}
